package immune_test

import (
	"net"
	"sync"
	"testing"
	"time"

	"immune"
	"immune/internal/ids"
	"immune/internal/transport/tcpmesh"
)

// deterministic counter servant for the socket-backend test.
type ctrServant struct {
	mu sync.Mutex
	n  int64
}

func (c *ctrServant) Invoke(op string, args []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if op == "add" {
		d, err := immune.NewDecoder(args).ReadLongLong()
		if err != nil {
			return nil, err
		}
		c.n += d
	}
	e := immune.NewEncoder()
	e.WriteLongLong(c.n)
	return e.Bytes(), nil
}

func (c *ctrServant) Snapshot() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := immune.NewEncoder()
	e.WriteLongLong(c.n)
	return e.Bytes()
}

func (c *ctrServant) Restore(snap []byte) error {
	v, err := immune.NewDecoder(snap).ReadLongLong()
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n = v
	return nil
}

// TestSystemOverTCPMesh runs a full Immune system — ring, membership,
// replication, voting — with every processor's endpoint backed by real
// loopback TCP sockets instead of the simulated LAN. One process hosts
// all processors (the multi-process split is covered by cmd/immune-node's
// smoke test); what this adds is the whole protocol stack driving the
// socket backend under the race detector.
func TestSystemOverTCPMesh(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets and full stack")
	}
	const n = 4
	listeners := make(map[ids.ProcessorID]net.Listener, n)
	peers := make(map[ids.ProcessorID]string, n)
	for p := ids.ProcessorID(1); p <= n; p++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		listeners[p] = ln
		peers[p] = ln.Addr().String()
	}

	sys, err := immune.New(immune.Config{
		Processors: n,
		Seed:       11,
		Transport: func(p immune.ProcessorID, ring int) (immune.TransportEndpoint, error) {
			return tcpmesh.New(tcpmesh.Config{
				Self:     p,
				Ring:     ring,
				Peers:    peers,
				Listener: listeners[p],
				Seed:     11,
			})
		},
		SuspectTimeout: 2 * time.Second,
		CallTimeout:    5 * time.Second,
		InvokeRetries:  2,
	})
	if err != nil {
		t.Fatalf("new system: %v", err)
	}
	sys.Start()
	defer sys.Stop()

	const (
		serverGroup = immune.GroupID(1)
		clientGroup = immune.GroupID(2)
		key         = "Counter/main"
	)
	replicas, err := sys.HostGroup(serverGroup, key, 3, func() immune.Servant {
		return &ctrServant{}
	})
	if err != nil {
		t.Fatalf("host group: %v", err)
	}
	for _, r := range replicas {
		if err := r.WaitActive(30 * time.Second); err != nil {
			t.Fatalf("server replica: %v", err)
		}
	}

	p4, err := sys.Processor(4)
	if err != nil {
		t.Fatalf("processor 4: %v", err)
	}
	client, err := p4.NewClient(clientGroup)
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	client.Bind(key, serverGroup)
	if err := client.Replica().WaitActive(30 * time.Second); err != nil {
		t.Fatalf("client replica: %v", err)
	}

	args := immune.NewEncoder()
	args.WriteLongLong(7)
	obj := client.Object(key)
	var got int64
	for i := 0; i < 5; i++ {
		body, err := obj.Invoke("add", args.Bytes())
		if err != nil {
			t.Fatalf("invoke %d: %v", i, err)
		}
		if got, err = immune.NewDecoder(body).ReadLongLong(); err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
	}
	if got != 35 {
		t.Fatalf("voted counter = %d after 5 adds of 7, want 35", got)
	}
}
