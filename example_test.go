package immune_test

import (
	"fmt"
	"log"
	"time"

	"immune"
)

// register is a minimal deterministic servant: a single replicated value.
type register struct {
	value int64
}

func (r *register) Invoke(op string, args []byte) ([]byte, error) {
	if op == "set" {
		v, err := immune.NewDecoder(args).ReadLongLong()
		if err != nil {
			return nil, err
		}
		r.value = v
	}
	e := immune.NewEncoder()
	e.WriteLongLong(r.value)
	return e.Bytes(), nil
}

func (r *register) Snapshot() []byte {
	e := immune.NewEncoder()
	e.WriteLongLong(r.value)
	return e.Bytes()
}

func (r *register) Restore(snap []byte) error {
	v, err := immune.NewDecoder(snap).ReadLongLong()
	if err != nil {
		return err
	}
	r.value = v
	return nil
}

// Example deploys a three-way replicated register and reads back a
// majority-voted value through a CORBA-style stub.
func Example() {
	sys, err := immune.New(immune.Config{Processors: 6, Seed: 123})
	if err != nil {
		log.Fatal(err)
	}
	sys.Start()
	defer sys.Stop()

	const (
		serverGroup = immune.GroupID(1)
		clientGroup = immune.GroupID(2)
	)

	// The replicated server: one replica on each of P1..P3.
	for pid := immune.ProcessorID(1); pid <= 3; pid++ {
		p, err := sys.Processor(pid)
		if err != nil {
			log.Fatal(err)
		}
		replica, err := p.HostServer(serverGroup, "Register/main", &register{})
		if err != nil {
			log.Fatal(err)
		}
		if err := replica.WaitActive(10 * time.Second); err != nil {
			log.Fatal(err)
		}
	}

	// One client replica is enough for this example (degree-1 client
	// group); production deployments replicate the client too.
	p, err := sys.Processor(4)
	if err != nil {
		log.Fatal(err)
	}
	client, err := p.NewClient(clientGroup)
	if err != nil {
		log.Fatal(err)
	}
	client.Bind("Register/main", serverGroup)
	if err := client.Replica().WaitActive(10 * time.Second); err != nil {
		log.Fatal(err)
	}

	args := immune.NewEncoder()
	args.WriteLongLong(42)
	body, err := client.Object("Register/main").Invoke("set", args.Bytes())
	if err != nil {
		log.Fatal(err)
	}
	v, err := immune.NewDecoder(body).ReadLongLong()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(v)
	// Output: 42
}
