// Command sensorfusion shows the Immune system under the kind of critical
// workload its introduction motivates: a flight-control-style sensor
// fusion service that must keep producing correct averages while a
// replica is corrupted AND the network loses and corrupts frames at the
// same time — the combined fault load of Table 1.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"immune"
)

// fusionServant accumulates sensor samples and reports a running mean.
type fusionServant struct {
	mu      sync.Mutex
	count   int64
	sum     float64
	corrupt bool
}

func (f *fusionServant) Invoke(op string, args []byte) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	switch op {
	case "sample":
		v, err := immune.NewDecoder(args).ReadDouble()
		if err != nil {
			return nil, err
		}
		f.count++
		f.sum += v
	case "mean":
	default:
		return nil, fmt.Errorf("unknown operation %q", op)
	}
	mean := 0.0
	if f.count > 0 {
		mean = f.sum / float64(f.count)
	}
	if f.corrupt {
		mean = -9999 // a stuck-at-fault sensor fusion replica
	}
	e := immune.NewEncoder()
	e.WriteLongLong(f.count)
	e.WriteDouble(mean)
	return e.Bytes(), nil
}

func (f *fusionServant) Snapshot() []byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	e := immune.NewEncoder()
	e.WriteLongLong(f.count)
	e.WriteDouble(f.sum)
	return e.Bytes()
}

func (f *fusionServant) Restore(snap []byte) error {
	d := immune.NewDecoder(snap)
	count, err := d.ReadLongLong()
	if err != nil {
		return err
	}
	sum, err := d.ReadDouble()
	if err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.count, f.sum = count, sum
	return nil
}

const (
	fusionGroup = immune.GroupID(1)
	pilotGroup  = immune.GroupID(2)
	fusionKey   = "Fusion/attitude"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A hostile environment: 5% frame loss and 2% frame corruption, on
	// top of which a replica will turn Byzantine.
	sys, err := immune.New(immune.Config{
		Processors:     6,
		Seed:           4,
		Plan:           immune.Probabilistic(99, 0.05, 0.02, 0, 0),
		SuspectTimeout: 60 * time.Millisecond,
		CallTimeout:    30 * time.Second,
	})
	if err != nil {
		return err
	}
	sys.Start()
	defer sys.Stop()
	fmt.Println("sensor fusion on a lossy, corrupting network (5% loss, 2% corruption)")

	servants := map[immune.ProcessorID]*fusionServant{}
	for pid := immune.ProcessorID(1); pid <= 3; pid++ {
		p, err := sys.Processor(pid)
		if err != nil {
			return err
		}
		sv := &fusionServant{}
		servants[pid] = sv
		r, err := p.HostServer(fusionGroup, fusionKey, sv)
		if err != nil {
			return err
		}
		if err := r.WaitActive(30 * time.Second); err != nil {
			return err
		}
	}
	var pilots []*immune.Client
	for pid := immune.ProcessorID(4); pid <= 6; pid++ {
		p, err := sys.Processor(pid)
		if err != nil {
			return err
		}
		c, err := p.NewClient(pilotGroup)
		if err != nil {
			return err
		}
		c.Bind(fusionKey, fusionGroup)
		if err := c.Replica().WaitActive(30 * time.Second); err != nil {
			return err
		}
		pilots = append(pilots, c)
	}

	sample := func(v float64) (int64, float64, error) {
		args := immune.NewEncoder()
		args.WriteDouble(v)
		type res struct {
			count int64
			mean  float64
			err   error
		}
		results := make([]res, len(pilots))
		var wg sync.WaitGroup
		for i, c := range pilots {
			wg.Add(1)
			go func(i int, c *immune.Client) {
				defer wg.Done()
				body, err := c.Object(fusionKey).Invoke("sample", args.Bytes())
				if err != nil {
					results[i].err = err
					return
				}
				d := immune.NewDecoder(body)
				results[i].count, results[i].err = d.ReadLongLong()
				if results[i].err == nil {
					results[i].mean, results[i].err = d.ReadDouble()
				}
			}(i, c)
		}
		wg.Wait()
		for _, r := range results {
			if r.err != nil {
				return 0, 0, r.err
			}
			if r.count != results[0].count || r.mean != results[0].mean {
				return 0, 0, fmt.Errorf("pilots disagree: %+v", results)
			}
		}
		return results[0].count, results[0].mean, nil
	}

	readings := []float64{10.0, 10.4, 9.8, 10.2, 9.6}
	for i, v := range readings {
		count, mean, err := sample(v)
		if err != nil {
			return err
		}
		fmt.Printf("sample %.1f -> fused n=%d mean=%.3f\n", v, count, mean)
		if i == 2 {
			servants[1].mu.Lock()
			servants[1].corrupt = true
			servants[1].mu.Unlock()
			fmt.Println("** fusion replica on P1 is now Byzantine (reports -9999) **")
		}
	}

	fmt.Println("majority voting kept the fused answers correct throughout;")
	fmt.Printf("network endured: %+v\n", sys.NetStats())

	// Let the exclusion machinery finish its job.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		p2, err := sys.Processor(2)
		if err != nil {
			return err
		}
		if len(p2.View().Members) == 5 {
			fmt.Printf("Byzantine processor excluded: membership %v\n", p2.View().Members)
			return nil
		}
		if _, _, err := sample(10.0); err != nil {
			// A call can time out while the membership reconfigures
			// under loss; the client sees a CORBA system exception and
			// retries — the survivable outcome.
			fmt.Printf("transient during reconfiguration: %v\n", err)
		}
		time.Sleep(30 * time.Millisecond)
	}
	fmt.Println("note: exclusion still pending at exit (lossy network slows evidence flow)")
	return nil
}
