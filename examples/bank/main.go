// Command bank demonstrates survivability under a value fault (Table 1:
// "incorrect value for invocation (response) received from a particular
// client (server) replica"): a three-way replicated bank account keeps
// answering correctly while one of its replicas is corrupted and lies
// about balances; the value fault detector then identifies the corrupt
// replica's processor and the membership protocol excludes it — the full
// §6.2 pipeline.
package main

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"immune"
)

// accountServant is a deterministic replicated bank account. Setting
// corrupt makes it report inflated balances — a value-faulty replica.
type accountServant struct {
	mu      sync.Mutex
	balance int64
	corrupt bool
}

func (a *accountServant) Invoke(op string, args []byte) ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch op {
	case "deposit":
		amount, err := immune.NewDecoder(args).ReadLongLong()
		if err != nil {
			return nil, err
		}
		a.balance += amount
	case "withdraw":
		amount, err := immune.NewDecoder(args).ReadLongLong()
		if err != nil {
			return nil, err
		}
		if amount > a.balance {
			return nil, errors.New("insufficient funds")
		}
		a.balance -= amount
	case "balance":
	default:
		return nil, fmt.Errorf("unknown operation %q", op)
	}
	e := immune.NewEncoder()
	if a.corrupt {
		e.WriteLongLong(a.balance * 1000) // the lie
	} else {
		e.WriteLongLong(a.balance)
	}
	return e.Bytes(), nil
}

func (a *accountServant) Snapshot() []byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	e := immune.NewEncoder()
	e.WriteLongLong(a.balance)
	return e.Bytes()
}

func (a *accountServant) Restore(snap []byte) error {
	v, err := immune.NewDecoder(snap).ReadLongLong()
	if err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.balance = v
	return nil
}

const (
	accountGroup = immune.GroupID(1)
	tellerGroup  = immune.GroupID(2)
	accountKey   = "Account/alice"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys, err := immune.New(immune.Config{
		Processors:      6,
		Seed:            2,
		SuspectTimeout:  40 * time.Millisecond,
		AutoRecover:     true,
		RecoveryBackoff: 25 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	sys.Start()
	defer sys.Stop()

	// Replicated account, registered at degree 3 so the recovery manager
	// maintains it (initial hosts P1..P3, in order). Keep handles on the
	// created servants so we can corrupt one later.
	var servantMu sync.Mutex
	var servants []*accountServant
	replicas, err := sys.HostGroup(accountGroup, accountKey, 3, func() immune.Servant {
		sv := &accountServant{}
		servantMu.Lock()
		servants = append(servants, sv)
		servantMu.Unlock()
		return sv
	})
	if err != nil {
		return err
	}
	for _, r := range replicas {
		if err := r.WaitActive(10 * time.Second); err != nil {
			return err
		}
	}

	// Replicated teller (the client) on P4..P6.
	var tellers []*immune.Client
	for pid := immune.ProcessorID(4); pid <= 6; pid++ {
		p, err := sys.Processor(pid)
		if err != nil {
			return err
		}
		c, err := p.NewClient(tellerGroup)
		if err != nil {
			return err
		}
		c.Bind(accountKey, accountGroup)
		if err := c.Replica().WaitActive(10 * time.Second); err != nil {
			return err
		}
		tellers = append(tellers, c)
	}

	call := func(op string, amount int64) ([]int64, error) {
		args := immune.NewEncoder()
		args.WriteLongLong(amount)
		out := make([]int64, len(tellers))
		errs := make([]error, len(tellers))
		var wg sync.WaitGroup
		for i, c := range tellers {
			wg.Add(1)
			go func(i int, c *immune.Client) {
				defer wg.Done()
				body, err := c.Object(accountKey).Invoke(op, args.Bytes())
				if err != nil {
					errs[i] = err
					return
				}
				out[i], errs[i] = immune.NewDecoder(body).ReadLongLong()
			}(i, c)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		return out, nil
	}

	balances, err := call("deposit", 100)
	if err != nil {
		return err
	}
	fmt.Printf("deposit 100 -> voted balances %v\n", balances)

	// Corrupt the replica on P2 (the second servant created): from now on
	// it reports balances ×1000.
	servantMu.Lock()
	p2Servant := servants[1]
	servantMu.Unlock()
	p2Servant.mu.Lock()
	p2Servant.corrupt = true
	p2Servant.mu.Unlock()
	fmt.Println("replica on P2 is now corrupted (reports balance*1000)")

	balances, err = call("balance", 0)
	if err != nil {
		return err
	}
	fmt.Printf("balance query with corrupt replica -> voted balances %v (majority voting masks the lie)\n", balances)

	// Keep traffic flowing until the value fault detector's evidence
	// excludes P2 from the processor membership (§6.2).
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		p1, err := sys.Processor(1)
		if err != nil {
			return err
		}
		view := p1.View().Members
		excluded := true
		for _, m := range view {
			if m == 2 {
				excluded = false
			}
		}
		if excluded {
			fmt.Printf("P2 excluded from the membership: %v\n", view)
			fmt.Printf("account group is now %v\n", p1.GroupMembers(accountGroup))
			break
		}
		if _, err := call("balance", 0); err != nil {
			return err
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The exclusion left the account group one replica short; the
	// recovery manager re-hosts it (with state transfer) automatically.
	recovered := time.Now().Add(30 * time.Second)
	for time.Now().Before(recovered) {
		gh := accountHealth(sys)
		if gh.Recoveries >= 1 && gh.Live == gh.Degree && !gh.Degraded {
			fmt.Printf("recovery restored degree %d: health %+v\n", gh.Degree, gh)
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	balances, err = call("withdraw", 30)
	if err != nil {
		return err
	}
	fmt.Printf("withdraw 30 after exclusion -> voted balances %v\n", balances)
	return nil
}

func accountHealth(sys *immune.System) immune.GroupHealth {
	for _, gh := range sys.Health().Groups {
		if gh.Group == accountGroup {
			return gh
		}
	}
	return immune.GroupHealth{}
}
