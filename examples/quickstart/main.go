// Command quickstart is the smallest complete Immune deployment: a
// three-way actively replicated counter service and a three-way replicated
// client on a six-processor system, with every invocation and response
// majority voted — the architecture of the paper's Figure 1.
package main

import (
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"immune"
)

// counterServant is a deterministic replicated counter.
type counterServant struct {
	mu    sync.Mutex
	value int64
}

func (c *counterServant) Invoke(op string, args []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch op {
	case "add":
		delta, err := immune.NewDecoder(args).ReadLongLong()
		if err != nil {
			return nil, err
		}
		c.value += delta
	case "get":
	default:
		return nil, fmt.Errorf("unknown operation %q", op)
	}
	e := immune.NewEncoder()
	e.WriteLongLong(c.value)
	return e.Bytes(), nil
}

func (c *counterServant) Snapshot() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := immune.NewEncoder()
	e.WriteLongLong(c.value)
	return e.Bytes()
}

func (c *counterServant) Restore(snap []byte) error {
	v, err := immune.NewDecoder(snap).ReadLongLong()
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.value = v
	return nil
}

const (
	serverGroup = immune.GroupID(1)
	clientGroup = immune.GroupID(2)
	objectKey   = "Counter/main"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
	_ = os.Stdout
}

func run() error {
	// Six processors, full survivability (signed tokens + digests +
	// majority voting): the paper's testbed shape.
	sys, err := immune.New(immune.Config{Processors: 6, Seed: 1})
	if err != nil {
		return err
	}
	sys.Start()
	defer sys.Stop()
	fmt.Printf("started %d processors; tolerates %d Byzantine fault(s)\n",
		len(sys.Processors()), sys.MaxFaulty())

	// Three-way replicated server on P1..P3.
	for pid := immune.ProcessorID(1); pid <= 3; pid++ {
		p, err := sys.Processor(pid)
		if err != nil {
			return err
		}
		replica, err := p.HostServer(serverGroup, objectKey, &counterServant{})
		if err != nil {
			return err
		}
		if err := replica.WaitActive(10 * time.Second); err != nil {
			return err
		}
		fmt.Printf("server replica %s active\n", replica.ID())
	}

	// Three-way replicated client on P4..P6. Each client replica runs
	// the same deterministic program; the Immune system recognizes their
	// invocations as copies of one operation and votes on them.
	clients := make([]*immune.Client, 0, 3)
	for pid := immune.ProcessorID(4); pid <= 6; pid++ {
		p, err := sys.Processor(pid)
		if err != nil {
			return err
		}
		c, err := p.NewClient(clientGroup)
		if err != nil {
			return err
		}
		c.Bind(objectKey, serverGroup)
		if err := c.Replica().WaitActive(10 * time.Second); err != nil {
			return err
		}
		clients = append(clients, c)
	}
	fmt.Println("client replicas active on P4, P5, P6")

	// The replicated client increments the counter three times.
	for round := 1; round <= 3; round++ {
		args := immune.NewEncoder()
		args.WriteLongLong(int64(round * 10))

		var wg sync.WaitGroup
		results := make([]int64, len(clients))
		for i, c := range clients {
			wg.Add(1)
			go func(i int, c *immune.Client) {
				defer wg.Done()
				body, err := c.Object(objectKey).Invoke("add", args.Bytes())
				if err != nil {
					log.Printf("client replica %d: %v", i, err)
					return
				}
				results[i], _ = immune.NewDecoder(body).ReadLongLong()
			}(i, c)
		}
		wg.Wait()
		fmt.Printf("round %d: voted results at the three client replicas: %v\n",
			round, results)
	}

	p1, err := sys.Processor(1)
	if err != nil {
		return err
	}
	fmt.Printf("server group members: %v\n", p1.GroupMembers(serverGroup))
	fmt.Printf("P1 ring stats: %+v\n", p1.RingStats())
	return nil
}
