// Command packetdriver reproduces the paper's test application (§8): the
// client object acts as a packet driver, sending a constant stream of
// one-way invocations at a specified rate to the server object; throughput
// is measured at the server. Both objects are three-way replicated on a
// six-processor system, and the survivability level is selectable so the
// four cases of Figure 7 can be compared.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"immune"
)

const (
	sinkGroup   = immune.GroupID(1)
	driverGroup = immune.GroupID(2)
	sinkKey     = "sink"
)

func main() {
	level := flag.String("level", "signatures", "survivability level: none | digests | signatures | baseline")
	interval := flag.Duration("interval", 200*time.Microsecond, "interval between invocations at the client")
	duration := flag.Duration("duration", 2*time.Second, "measurement duration")
	payload := flag.Int("payload", 16, "invocation body size in bytes (the paper's IIOP messages are 64 bytes framed)")
	flag.Parse()

	if err := run(*level, *interval, *duration, *payload); err != nil {
		log.Fatal(err)
	}
}

func run(levelName string, interval, duration time.Duration, payloadSize int) error {
	body := immune.PacketPayload(payloadSize)

	if levelName == "baseline" {
		// Case 1: unreplicated client and server without the Immune
		// system, over plain IIOP.
		sink := immune.NewPacketSink()
		base, err := immune.NewBaseline(sinkKey, sink)
		if err != nil {
			return err
		}
		defer base.Close()
		obj := base.Object(sinkKey)
		sent := driveFixedRate(duration, interval, func() error {
			return obj.InvokeOneWay("push", body)
		})
		report("baseline (case 1)", sent, sink.Received(), duration)
		return nil
	}

	var level immune.Level
	switch levelName {
	case "none":
		level = immune.LevelNone
	case "digests":
		level = immune.LevelDigests
	case "signatures":
		level = immune.LevelSignatures
	default:
		return fmt.Errorf("unknown level %q", levelName)
	}

	sys, err := immune.New(immune.Config{Processors: 6, Level: level, Seed: 3})
	if err != nil {
		return err
	}
	sys.Start()
	defer sys.Stop()

	// Three-way replicated sink on P1..P3.
	sinks := make([]*immune.PacketSink, 0, 3)
	for pid := immune.ProcessorID(1); pid <= 3; pid++ {
		p, err := sys.Processor(pid)
		if err != nil {
			return err
		}
		sink := immune.NewPacketSink()
		sinks = append(sinks, sink)
		r, err := p.HostServer(sinkGroup, sinkKey, sink)
		if err != nil {
			return err
		}
		if err := r.WaitActive(10 * time.Second); err != nil {
			return err
		}
	}

	// Three-way replicated packet driver on P4..P6.
	var drivers []*immune.Object
	for pid := immune.ProcessorID(4); pid <= 6; pid++ {
		p, err := sys.Processor(pid)
		if err != nil {
			return err
		}
		c, err := p.NewClient(driverGroup)
		if err != nil {
			return err
		}
		c.Bind(sinkKey, sinkGroup)
		if err := c.Replica().WaitActive(10 * time.Second); err != nil {
			return err
		}
		drivers = append(drivers, c.Object(sinkKey))
	}

	// Drive: every client replica issues the same one-way invocation
	// stream (deterministic replicated client).
	sent := driveFixedRate(duration, interval, func() error {
		for _, d := range drivers {
			if err := d.InvokeOneWay("push", body); err != nil {
				return err
			}
		}
		return nil
	})

	// Let in-flight invocations drain, then read the voted deliveries.
	time.Sleep(500 * time.Millisecond)
	report(fmt.Sprintf("immune level=%s", levelName), sent, sinks[0].Received(), duration)
	for i, s := range sinks {
		fmt.Printf("  sink replica %d received %d\n", i+1, s.Received())
	}
	p1, _ := sys.Processor(1)
	fmt.Printf("  ring stats at P1: %+v\n", p1.RingStats())
	return nil
}

// driveFixedRate calls send once per interval for the given duration and
// returns the number of invocations issued.
func driveFixedRate(duration, interval time.Duration, send func() error) uint64 {
	deadline := time.Now().Add(duration)
	var sent uint64
	next := time.Now()
	for time.Now().Before(deadline) {
		if err := send(); err != nil {
			log.Printf("send: %v", err)
			break
		}
		sent++
		next = next.Add(interval)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
	}
	return sent
}

func report(name string, sent, received uint64, duration time.Duration) {
	fmt.Printf("%s: sent %d invocations, server processed %d (%.0f invocations/sec)\n",
		name, sent, received, float64(received)/duration.Seconds())
}
