package immune

import (
	"fmt"

	"immune/internal/orb"
)

// Baseline is the unreplicated, non-survivable reference deployment of
// Figure 7 case 1: a client and server object over a plain ORB without the
// Immune system, so throughput is determined by the ORB mechanisms alone.
// Two transports are available: in-process loopback, and genuine IIOP over
// a TCP socket (closer to the paper's VisiBroker deployment).
type Baseline struct {
	adapter *orb.Adapter
	orb     *orb.ORB
	server  *orb.TCPServer
	tcp     *orb.TCPTransport
}

// NewBaseline creates a loopback baseline hosting the servant under
// objectKey.
func NewBaseline(objectKey string, servant Servant) (*Baseline, error) {
	adapter := orb.NewAdapter()
	if err := adapter.Register(objectKey, servant); err != nil {
		return nil, err
	}
	return &Baseline{
		adapter: adapter,
		orb:     orb.New(orb.NewLoopback(adapter)),
	}, nil
}

// NewBaselineTCP creates a baseline whose client and server speak IIOP
// over a real TCP loopback socket.
func NewBaselineTCP(objectKey string, servant Servant) (*Baseline, error) {
	adapter := orb.NewAdapter()
	if err := adapter.Register(objectKey, servant); err != nil {
		return nil, err
	}
	srv, err := orb.NewTCPServer("127.0.0.1:0", adapter)
	if err != nil {
		return nil, err
	}
	trans, err := orb.DialTCP(srv.Addr())
	if err != nil {
		srv.Close()
		return nil, fmt.Errorf("baseline: dial: %w", err)
	}
	return &Baseline{
		adapter: adapter,
		orb:     orb.New(trans),
		server:  srv,
		tcp:     trans,
	}, nil
}

// Object returns a stub for the hosted object.
func (b *Baseline) Object(objectKey string) *Object {
	return &Object{ref: b.orb.ObjRef(objectKey)}
}

// Close releases TCP resources (no-op for the loopback baseline).
func (b *Baseline) Close() {
	if b.tcp != nil {
		b.tcp.Close()
	}
	if b.server != nil {
		b.server.Close()
	}
}
